// Package arena provides reusable codec contexts: per-worker bundles of
// scratch memory that the compress/decompress hot paths draw their working
// buffers from, so steady-state codec calls perform near-zero heap
// allocations.
//
// A Ctx hands out typed slices in call order. Reset reclaims every slice at
// once (arena semantics): the next op's requests are served from the same
// slots, so a worker that repeatedly codes same-shaped shards stops
// allocating after the first op. This mirrors the persistent per-SM scratch
// of the GPU designs this repository emulates (cuSZ keeps its quant-code,
// histogram and Huffman workspaces device-resident across fields).
//
// Usage contract:
//
//   - A Ctx is single-goroutine. Per-worker slots (internal/pipeline,
//     cuszhi/stream) or the package Get/Put pool give each concurrent shard
//     its own Ctx; never share one across goroutines without external
//     ordering.
//   - Slices returned by the typed getters are valid until the next Reset
//     and are NOT zeroed — callers overwrite or clear them.
//   - All getters are nil-receiver safe: a nil *Ctx falls back to plain
//     make, so every ctx-threaded API works unchanged without a context.
//
// Packages attach their own long-lived scratch (Huffman trees and decode
// tables, permutation memos) via Aux keys; aux values survive Reset by
// design — they are caches, not per-op buffers.
package arena

import (
	"sync"
	"sync/atomic"
)

// Ctx is a reusable codec context. The zero value is ready to use.
type Ctx struct {
	f32  bufset[float32]
	f64  bufset[float64]
	i64  bufset[int64]
	i32  bufset[int32]
	u64  bufset[uint64]
	u32  bufset[uint32]
	u16  bufset[uint16]
	b    bufset[byte]
	ints bufset[int]

	aux []any
}

// NewCtx returns an empty context.
func NewCtx() *Ctx { return &Ctx{} }

// Reset reclaims every buffer handed out since the previous Reset. Aux
// values persist (they are cross-op caches).
func (c *Ctx) Reset() {
	if c == nil {
		return
	}
	c.f32.reset()
	c.f64.reset()
	c.i64.reset()
	c.i32.reset()
	c.u64.reset()
	c.u32.reset()
	c.u16.reset()
	c.b.reset()
	c.ints.reset()
}

// F32 returns a []float32 of length n, valid until Reset.
func (c *Ctx) F32(n int) []float32 {
	if c == nil {
		return make([]float32, n)
	}
	return c.f32.take(n)
}

// F64 returns a []float64 of length n, valid until Reset.
func (c *Ctx) F64(n int) []float64 {
	if c == nil {
		return make([]float64, n)
	}
	return c.f64.take(n)
}

// I64 returns a []int64 of length n, valid until Reset.
func (c *Ctx) I64(n int) []int64 {
	if c == nil {
		return make([]int64, n)
	}
	return c.i64.take(n)
}

// I32 returns a []int32 of length n, valid until Reset.
func (c *Ctx) I32(n int) []int32 {
	if c == nil {
		return make([]int32, n)
	}
	return c.i32.take(n)
}

// U64 returns a []uint64 of length n, valid until Reset.
func (c *Ctx) U64(n int) []uint64 {
	if c == nil {
		return make([]uint64, n)
	}
	return c.u64.take(n)
}

// U32 returns a []uint32 of length n, valid until Reset.
func (c *Ctx) U32(n int) []uint32 {
	if c == nil {
		return make([]uint32, n)
	}
	return c.u32.take(n)
}

// U16 returns a []uint16 of length n, valid until Reset.
func (c *Ctx) U16(n int) []uint16 {
	if c == nil {
		return make([]uint16, n)
	}
	return c.u16.take(n)
}

// Bytes returns a []byte of length n, valid until Reset.
func (c *Ctx) Bytes(n int) []byte {
	if c == nil {
		return make([]byte, n)
	}
	return c.b.take(n)
}

// Ints returns a []int of length n, valid until Reset.
func (c *Ctx) Ints(n int) []int {
	if c == nil {
		return make([]int, n)
	}
	return c.ints.take(n)
}

// ---------------------------------------------------------------------------
// Aux: package-private scratch attached to a context.

// AuxKey identifies one consumer's slot in every Ctx. Allocate one per
// package with NewAuxKey at init time.
type AuxKey int32

var auxKeys atomic.Int32

// NewAuxKey allocates a process-wide unique aux slot.
func NewAuxKey() AuxKey { return AuxKey(auxKeys.Add(1) - 1) }

// Aux returns the value stored under k, or nil. Safe on a nil Ctx.
func (c *Ctx) Aux(k AuxKey) any {
	if c == nil || int(k) >= len(c.aux) {
		return nil
	}
	return c.aux[k]
}

// SetAux stores v under k. No-op on a nil Ctx.
func (c *Ctx) SetAux(k AuxKey, v any) {
	if c == nil {
		return
	}
	for int(k) >= len(c.aux) {
		c.aux = append(c.aux, nil)
	}
	c.aux[k] = v
}

// ---------------------------------------------------------------------------
// Batch scratch slots.

// Slots returns the chunk-indexed batch scratch for key k grown to n
// elements. Unlike the call-order typed getters, slot contents persist
// across Resets: element i keeps its identity (and any backing arrays its
// fields have grown) between ops, which is what the batched kernels need —
// each parallel kernel invocation owns exactly one slot, so per-chunk
// collectors and bit writers warm up once and never reallocate. With a nil
// ctx a fresh slice is returned per call.
func Slots[T any](c *Ctx, k AuxKey, n int) []T {
	if c == nil {
		return make([]T, n)
	}
	p, ok := c.Aux(k).(*[]T)
	if !ok {
		p = new([]T)
		c.SetAux(k, p)
	}
	if cap(*p) < n {
		grown := make([]T, n, ceilPow2(n))
		copy(grown, *p)
		*p = grown
	}
	*p = (*p)[:n]
	return *p
}

// ---------------------------------------------------------------------------
// Context pool.

var ctxPool = sync.Pool{New: func() any { return NewCtx() }}

// Get returns a reset context from the process-wide pool.
func Get() *Ctx {
	c := ctxPool.Get().(*Ctx)
	c.Reset()
	return c
}

// Put returns a context to the pool. The caller must not use c (or any
// slice obtained from it) afterwards.
func Put(c *Ctx) {
	if c != nil {
		ctxPool.Put(c)
	}
}

// ---------------------------------------------------------------------------
// Typed slot sets.

// bufset hands out slices of one element type in call order; reset
// reclaims all of them. Capacities are rounded up to powers of two so
// slightly varying request sizes keep hitting the same slots.
type bufset[T any] struct {
	slots [][]T
	next  int
}

// take returns the next pooled slot, growing it only when the request
// outruns every prior warm-up pass.
//
//cuszhi:hotpath
func (s *bufset[T]) take(n int) []T {
	if s.next < len(s.slots) {
		if b := s.slots[s.next]; cap(b) >= n {
			s.next++
			return b[:n]
		}
	}
	//lint:ignore hotpathalloc grow path: runs only until the pool is warm
	b := make([]T, n, ceilPow2(n))
	if s.next < len(s.slots) {
		s.slots[s.next] = b
	} else {
		//lint:ignore hotpathalloc grow path: runs only until the pool is warm
		s.slots = append(s.slots, b)
	}
	s.next++
	return b
}

func (s *bufset[T]) reset() { s.next = 0 }

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}
