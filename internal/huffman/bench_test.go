package huffman

import (
	"math/rand"
	"testing"

	"repro/internal/arena"
)

func quantLike(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(128 + rng.NormFloat64()*3)
	}
	return out
}

func BenchmarkEncodeBytes(b *testing.B) {
	data := quantLike(1<<22, 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBytes(dev, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBytes(b *testing.B) {
	data := quantLike(1<<22, 2)
	enc, err := EncodeBytes(dev, data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBytes(dev, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeSymbols measures multi-symbol decode throughput on the
// Lorenzo code alphabet (the cuSZ-L entropy-decode hot path): skewed
// 16-bit symbols, reused codec context.
func BenchmarkDecodeSymbols(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	syms := make([]uint16, 1<<22)
	for i := range syms {
		syms[i] = uint16(513 + int(rng.NormFloat64()*3))
	}
	enc, err := Encode(dev, syms, 1026)
	if err != nil {
		b.Fatal(err)
	}
	ctx := arena.NewCtx()
	b.SetBytes(int64(2 * len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Reset()
		if _, err := DecodeCtx(ctx, dev, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeSymbolsFused measures encode throughput when the
// histogram is supplied by the caller (the quantize+histogram fusion).
func BenchmarkEncodeSymbolsFused(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	syms := make([]uint16, 1<<22)
	freq := make([]int64, 1026)
	for i := range syms {
		s := uint16(513 + int(rng.NormFloat64()*3))
		syms[i] = s
		freq[s]++
	}
	ctx := arena.NewCtx()
	b.SetBytes(int64(2 * len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Reset()
		if _, err := EncodeCtx(ctx, dev, syms, 1026, freq); err != nil {
			b.Fatal(err)
		}
	}
}
