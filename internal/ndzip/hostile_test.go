package ndzip

import (
	"errors"
	"testing"

	"repro/internal/bitio"
)

// TestDecodeHostileDeclaredLength pins the wire-length cap on the container
// header: a 2^63-scale declared length used to wrap the int negative and
// panic the output allocation, and a merely-huge one forced a multi-GB make
// before any payload check. Both must fail with ErrCorrupt.
func TestDecodeHostileDeclaredLength(t *testing.T) {
	for _, declared := range []uint64{
		1 << 63,       // wraps int negative on 64-bit
		1<<63 + 12345, // ditto, non-round
		1 << 40,       // fits an int but dwarfs the container
	} {
		blob := bitio.AppendUvarint(nil, declared)
		// A little payload so the header parse itself succeeds.
		blob = append(blob, make([]byte, 64)...)
		out, err := Decode(dev, blob)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("declared=%d: got (%d bytes, %v), want ErrCorrupt", declared, len(out), err)
		}
	}
}
