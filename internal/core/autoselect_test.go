package core

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

func TestAutoSelectPicksAWinner(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{48, 64, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	sel, err := AutoSelect(dev, f.Data, f.Dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.SampleCR) != 6 { // three assemblies + fzgpu/szp/szx backends
		t.Fatalf("sample CRs: %v", sel.SampleCR)
	}
	// The winner's sample CR must be the max.
	winner := sel.SampleCR[sel.Options.Name]
	for name, cr := range sel.SampleCR {
		if cr > winner {
			t.Fatalf("%s (%.1f) beats winner %s (%.1f)", name, cr, sel.Options.Name, winner)
		}
	}
	// On smooth data at a large bound, Hi-CR should win.
	if sel.Options.Name != "cuSZ-Hi-CR" {
		t.Fatalf("expected cuSZ-Hi-CR on smooth data, got %s (%v)", sel.Options.Name, sel.SampleCR)
	}
	// The winning registered codec travels with the selection.
	if sel.Codec == nil || sel.Codec.ID() != CodecHiCR {
		t.Fatalf("selection codec = %v", sel.Codec)
	}
}

// TestAutoSelectCtxReusesScratch is the arena-threading guard: repeated
// selections through one warm context must stop allocating estimator
// working sets. The ceiling (300) sits above the warm-context cost (the
// auto-tune error matrices, the Huffman length builder, Options
// construction) and below what re-making the predictor/probe scratch per
// selection costs, so regressing to fresh scratch per candidate trips it.
func TestAutoSelectCtxReusesScratch(t *testing.T) {
	dims := []int{32, 24, 24}
	data := rampField(32 * 24 * 24)
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ctx := arena.NewCtx()
	cd, err := SelectShardCodec(ctx, dev1, data, dims, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		got, err := SelectShardCodec(ctx, dev1, data, dims, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != cd.ID() {
			t.Fatalf("selection flapped: %s vs %s", got.Name(), cd.Name())
		}
	})
	if n > 300 {
		t.Fatalf("steady-state SelectShardCodec allocates %v/op, want <= 300", n)
	}

	// AutoSelectCtx agrees with the context-free path on the same data.
	want, err := AutoSelect(dev1, data, dims, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AutoSelectCtx(ctx, dev1, data, dims, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options.Name != want.Options.Name || len(got.SampleCR) != len(want.SampleCR) {
		t.Fatalf("ctx selection %s diverges from context-free %s", got.Options.Name, want.Options.Name)
	}
	for name, cr := range want.SampleCR {
		if got.SampleCR[name] != cr {
			t.Fatalf("%s: sample CR %v != %v", name, got.SampleCR[name], cr)
		}
	}
}

func TestAutoSelectThenCompressHonoursBound(t *testing.T) {
	f, err := datagen.Generate("cesm", []int{128, 256}, 2)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-3)
	sel, err := AutoSelect(dev, f.Data, f.Dims, eb)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Compress(dev, f.Data, f.Dims, eb, sel.Options)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.WithinBound(f.Data, recon, eb) {
		t.Fatal("auto-selected assembly violated the bound")
	}
}

func TestAutoSelectSmallInput(t *testing.T) {
	// Inputs smaller than the sample slab fall back to whole-data sampling.
	data := make([]float32, 4*4*4)
	for i := range data {
		data[i] = float32(i)
	}
	sel, err := AutoSelect(dev, data, []int{4, 4, 4}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Options.Name == "" {
		t.Fatal("no selection")
	}
	if _, err := AutoSelect(dev, nil, nil, 1e-3); err == nil {
		t.Fatal("want error on empty data")
	}
}

func TestSampleSlab(t *testing.T) {
	data := make([]float32, 100*8*8)
	slab, dims := sampleSlab(data, []int{100, 8, 8}, 0.1)
	if dims[0] != 17 || dims[1] != 8 || dims[2] != 8 {
		t.Fatalf("slab dims = %v", dims)
	}
	if len(slab) != 17*8*8 {
		t.Fatalf("slab len = %d", len(slab))
	}
	// Tiny input: whole data.
	slab, dims = sampleSlab(data[:64], []int{1, 8, 8}, 0.1)
	if len(slab) != 64 || dims[0] != 1 {
		t.Fatalf("tiny slab = %d %v", len(slab), dims)
	}
}

// TestSampleSlabPreservesRank: the slab must keep the field's original
// rank, so candidates are scored on the same-shaped field they will
// compress — a rank-4 field must not collapse to 3-D slab dims.
func TestSampleSlabPreservesRank(t *testing.T) {
	dims4 := []int{40, 3, 4, 5}
	data := make([]float32, 40*3*4*5)
	for i := range data {
		data[i] = float32(i % 31)
	}
	slab, sdims := sampleSlab(data, dims4, 0.1)
	if len(sdims) != 4 {
		t.Fatalf("rank collapsed: slab dims = %v", sdims)
	}
	if sdims[0] != 17 || sdims[1] != 3 || sdims[2] != 4 || sdims[3] != 5 {
		t.Fatalf("slab dims = %v", sdims)
	}
	if len(slab) != 17*3*4*5 {
		t.Fatalf("slab len = %d", len(slab))
	}
	// 2-D fields keep their rank too.
	slab2, sdims2 := sampleSlab(make([]float32, 200*16), []int{200, 16}, 0.1)
	if len(sdims2) != 2 || sdims2[0] != 20 || sdims2[1] != 16 || len(slab2) != 20*16 {
		t.Fatalf("2-D slab = %d %v", len(slab2), sdims2)
	}
	// And AutoSelect itself works end to end on a rank-4 field.
	if _, err := AutoSelect(dev, data, dims4, 0.05); err != nil {
		t.Fatalf("AutoSelect on rank-4 field: %v", err)
	}
}
