// The corrupterr analyzer: wire-decode paths surface malformed input as
// ErrCorrupt — directly, or through a %w-wrapping fmt.Errorf — and never
// panic.
//
// Scope: packages that declare a package-level ErrCorrupt variable (the
// wire-decoding packages: core and every backend). Within them, functions
// named Decode*/Decompress*/Parse* (any case) that take a []byte somewhere
// in their signature are decode paths: their malformed-input branches must
// keep errors.Is(err, ErrCorrupt) working up the chain, so a bare
// errors.New, a fmt.Errorf without %w, or any panic( is a finding.
package lint

import (
	"go/ast"
	"strings"
)

func corruptErrAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "corrupterr",
		Doc:  "decode paths must wrap ErrCorrupt (%w) and never panic",
		Run:  runCorruptErr,
	}
}

func runCorruptErr(pkg *Package) []Finding {
	if !declaresErrCorrupt(pkg) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isDecodeFunc(fn) {
				continue
			}
			findings = append(findings, corruptErrFunc(pkg, fn)...)
		}
	}
	return findings
}

// declaresErrCorrupt reports whether the package has a top-level
// `var ErrCorrupt` — the marker of a wire-decoding package.
func declaresErrCorrupt(pkg *Package) bool {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "ErrCorrupt" {
						return true
					}
				}
			}
		}
	}
	return false
}

// isDecodeFunc matches the wire-decode entry points: Decode*/Decompress*/
// Parse* (exported or not) taking at least one []byte parameter, which
// separates payload decoders from same-named config parsers (e.g. a
// pipeline-spec Parse(string)).
func isDecodeFunc(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	lower := strings.ToLower(name)
	if !strings.HasPrefix(lower, "decode") && !strings.HasPrefix(lower, "decompress") &&
		!strings.HasPrefix(lower, "parse") {
		return false
	}
	if fn.Type.Params == nil {
		return false
	}
	for _, p := range fn.Type.Params.List {
		if at, ok := p.Type.(*ast.ArrayType); ok && at.Len == nil {
			if id, ok := at.Elt.(*ast.Ident); ok && (id.Name == "byte" || id.Name == "uint8") {
				return true
			}
		}
	}
	return false
}

func corruptErrFunc(pkg *Package, fn *ast.FuncDecl) []Finding {
	var findings []Finding
	report := func(n ast.Node, msg string) {
		findings = append(findings, Finding{
			Check:   "corrupterr",
			Pos:     pkg.Fset.Position(n.Pos()),
			Message: msg,
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "panic" {
				report(call, "decode paths must return ErrCorrupt on malformed input, never panic")
			}
		case *ast.SelectorExpr:
			pkgID, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkgID.Name == "errors" && fun.Sel.Name == "New" {
				report(call, "decode paths must not invent bare errors: return ErrCorrupt or %w-wrap it")
			}
			if pkgID.Name == "fmt" && fun.Sel.Name == "Errorf" && len(call.Args) > 0 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && !strings.Contains(lit.Value, "%w") {
					report(call, "fmt.Errorf in a decode path must %w-wrap (ErrCorrupt or an already-wrapped error)")
				}
			}
		}
		return true
	})
	return findings
}
