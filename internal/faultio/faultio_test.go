package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

// memFile is a minimal in-memory backing file for the File wrapper tests.
type memFile struct {
	buf   []byte
	syncs int
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	if need := off + int64(len(p)); need > int64(len(m.buf)) {
		m.buf = append(m.buf, make([]byte, need-int64(len(m.buf)))...)
	}
	return copy(m.buf[off:], p), nil
}

func (m *memFile) Truncate(size int64) error {
	if size <= int64(len(m.buf)) {
		m.buf = m.buf[:size]
	}
	return nil
}

func (m *memFile) Sync() error { m.syncs++; return nil }

func (m *memFile) Seek(off int64, whence int) (int64, error) {
	if whence != io.SeekEnd || off != 0 {
		return 0, errors.New("unsupported seek")
	}
	return int64(len(m.buf)), nil
}

func data(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestFlipByte(t *testing.T) {
	src := data(64)
	r := NewReaderAt(bytes.NewReader(src), FlipBit(10, 3), FlipByte(40, 0xFF))
	got := make([]byte, 64)
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	want := append([]byte(nil), src...)
	want[10] ^= 1 << 3
	want[40] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("flip not applied: got[10]=%#x got[40]=%#x", got[10], got[40])
	}
	// A read not covering the flip offsets is untouched.
	if _, err := r.ReadAt(got[:10], 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:10], src[:10]) {
		t.Fatal("flip leaked outside its offset")
	}
	// The backing store itself is never modified.
	if src[10] != 10 || src[40] != 40 {
		t.Fatal("backing store modified")
	}
}

func TestTransientThenSuccess(t *testing.T) {
	src := data(32)
	r := NewReaderAt(bytes.NewReader(src), TransientErrors(2, nil))
	p := make([]byte, 32)
	for i := 0; i < 2; i++ {
		if _, err := r.ReadAt(p, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: want ErrInjected, got %v", i, err)
		}
	}
	if _, err := r.ReadAt(p, 0); err != nil && err != io.EOF {
		t.Fatalf("third read should succeed, got %v", err)
	}
	if !bytes.Equal(p, src) {
		t.Fatal("post-fault read returned wrong bytes")
	}
	if r.Injected() != 2 || r.Ops() != 3 {
		t.Fatalf("counters: injected=%d ops=%d", r.Injected(), r.Ops())
	}
	if !core.IsTransient(ErrInjected) {
		t.Fatal("ErrInjected must classify as transient")
	}
}

func TestTransientErrorsAtScoped(t *testing.T) {
	r := NewReaderAt(bytes.NewReader(data(64)), TransientErrorsAt(32, 8, 1, nil))
	p := make([]byte, 8)
	// Outside the region: unaffected.
	if _, err := r.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	// Overlapping the region: one failure, then success.
	if _, err := r.ReadAt(p, 30); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if _, err := r.ReadAt(p, 30); err != nil {
		t.Fatal(err)
	}
}

func TestPermanentErrors(t *testing.T) {
	boom := errors.New("dead sector")
	r := NewReaderAt(bytes.NewReader(data(64)), PermanentErrors(16, 4, boom))
	p := make([]byte, 8)
	for i := 0; i < 5; i++ {
		if _, err := r.ReadAt(p, 12); !errors.Is(err, boom) {
			t.Fatalf("read %d: want dead-sector error, got %v", i, err)
		}
	}
	if _, err := r.ReadAt(p, 20); err != nil {
		t.Fatalf("read past the dead sector should succeed: %v", err)
	}
}

func TestShortReads(t *testing.T) {
	src := data(32)
	r := NewReaderAt(bytes.NewReader(src), ShortReads(1))
	p := make([]byte, 16)
	n, err := r.ReadAt(p, 0)
	if n != 15 || err == nil {
		t.Fatalf("want short read 15 with error, got n=%d err=%v", n, err)
	}
	n, err = r.ReadAt(p, 0)
	if n != 16 || err != nil {
		t.Fatalf("second read should be full: n=%d err=%v", n, err)
	}
}

func TestLatency(t *testing.T) {
	r := NewReaderAt(bytes.NewReader(data(8)), Latency(20*time.Millisecond))
	start := time.Now()
	if _, err := r.ReadAt(make([]byte, 8), 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

func TestFlipOffsetsDeterministic(t *testing.T) {
	a := FlipOffsets(42, 10, 1000)
	b := FlipOffsets(42, 10, 1000)
	if len(a) != 10 {
		t.Fatalf("want 10 offsets, got %d", len(a))
	}
	seen := map[int64]bool{}
	for i, off := range a {
		if off != b[i] {
			t.Fatal("FlipOffsets not deterministic for the same seed")
		}
		if off < 0 || off >= 1000 || seen[off] {
			t.Fatalf("bad offset %d", off)
		}
		seen[off] = true
	}
	if c := FlipOffsets(43, 10, 1000); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced the same prefix")
	}
}

func TestFileFaults(t *testing.T) {
	mf := &memFile{buf: data(32)}
	f := NewFile(mf, WriteErrors(1, nil), SyncErrors(1, nil), FlipByte(4, 0x80))
	if _, err := f.WriteAt([]byte{1}, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("first write should fail: %v", err)
	}
	if _, err := f.WriteAt([]byte{9}, 0); err != nil {
		t.Fatalf("second write should pass: %v", err)
	}
	if mf.buf[0] != 9 {
		t.Fatal("write did not reach backing file")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first sync should fail: %v", err)
	}
	if err := f.Sync(); err != nil || mf.syncs != 1 {
		t.Fatalf("second sync should pass: err=%v syncs=%d", err, mf.syncs)
	}
	p := make([]byte, 8)
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if p[4] != 4^0x80 {
		t.Fatalf("read flip not applied: %#x", p[4])
	}
	if err := f.Truncate(16); err != nil || len(mf.buf) != 16 {
		t.Fatalf("truncate: err=%v len=%d", err, len(mf.buf))
	}
	if n, err := f.Seek(0, io.SeekEnd); err != nil || n != 16 {
		t.Fatalf("seek: n=%d err=%v", n, err)
	}
}

// The retry policy in core must recover from (N-1) scripted transient
// faults when given N attempts — the contract stream.WithRetry builds on.
func TestRetryPolicyOverFaultReader(t *testing.T) {
	src := data(64)
	fr := NewReaderAt(bytes.NewReader(src), TransientErrors(2, nil))
	rp := core.RetryPolicy{Attempts: 3}
	wrapped := rp.WrapReaderAt(fr)
	p := make([]byte, 64)
	if err := core.ReadFullAt(wrapped, p, 0); err != nil {
		t.Fatalf("retry should absorb 2 transient faults: %v", err)
	}
	if !bytes.Equal(p, src) {
		t.Fatal("wrong bytes after retry")
	}
	if fr.Injected() != 2 {
		t.Fatalf("want 2 injections, got %d", fr.Injected())
	}
	// One attempt too few: the fault surfaces.
	fr2 := NewReaderAt(bytes.NewReader(src), TransientErrors(2, nil))
	wrapped2 := core.RetryPolicy{Attempts: 2}.WrapReaderAt(fr2)
	if err := core.ReadFullAt(wrapped2, p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected with too few attempts, got %v", err)
	}
}
