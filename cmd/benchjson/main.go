// Command benchjson runs the repository's core benchmarks in-process and
// writes the results as machine-readable JSON (BENCH_core.json), so the
// performance trajectory stays comparable across PRs and CI runs.
//
//	benchjson [-o BENCH_core.json] [-quick] [-baseline old.json]
//
// The suite mirrors the root `go test -bench` hot-path benchmarks: the
// Huffman entropy stage, one-shot compress/decompress through a reused
// codec context, the serial-vs-sharded chunked pipeline (the
// BenchmarkStreamChunked shapes), and the stream/automode entries — a
// mixed smooth/noisy field compressed with per-chunk estimator-driven
// codec selection (one entry per selection policy: best-ratio, throughput,
// ratio-floor) vs the best single fixed mode, reporting ratio alongside
// throughput. -quick shrinks the field sizes for CI smoke runs; -baseline
// embeds a previous run and reports speedups against it, keeping the
// cross-PR trajectory in one file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/cuszhi"
	"repro/cuszhi/stream"
	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/huffman"
	"repro/internal/interp"
	"repro/internal/lccodec"
	"repro/internal/lorenzo"
	"repro/internal/metrics"
)

// Result is one benchmark measurement.
type Result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	MBPerSec float64 `json:"mb_per_s"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	N        int     `json:"iterations"`
	// Ratio is the compression ratio the benchmarked path achieves on its
	// input (set for the stream/automode entries, where ratio — not just
	// throughput — is what auto mode is traded against).
	Ratio float64 `json:"ratio,omitempty"`
	// Against -baseline (0 when the baseline lacks this benchmark):
	BaselineMBPerSec float64 `json:"baseline_mb_per_s,omitempty"`
	Speedup          float64 `json:"speedup,omitempty"`
}

// Report is the BENCH_core.json document.
type Report struct {
	GeneratedUnix  int64    `json:"generated_unix"`
	GoVersion      string   `json:"go_version"`
	GOOS           string   `json:"goos"`
	GOARCH         string   `json:"goarch"`
	CPUs           int      `json:"cpus"`
	Quick          bool     `json:"quick"`
	Benchmarks     []Result `json:"benchmarks"`
	BaselineSource string   `json:"baseline_source,omitempty"`
}

type bench struct {
	name  string
	bytes int64
	ratio float64 // compression ratio of the benchmarked path, if meaningful
	run   func(b *testing.B)
}

func quantLike(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(128 + rng.NormFloat64()*3)
	}
	return out
}

func suite(quick bool) ([]bench, error) {
	dev := gpusim.New(0)
	dev1 := gpusim.New(1)
	dev4 := gpusim.New(4)

	hfN := 1 << 22
	oneShot := []int{64, 64, 64}
	streamDims := []int{256, 256, 256}
	if quick {
		hfN = 1 << 19
		streamDims = []int{64, 64, 64}
	}

	hfData := quantLike(hfN, 1)
	hfEnc, err := huffman.EncodeBytes(dev, hfData)
	if err != nil {
		return nil, err
	}
	symData := make([]uint16, hfN)
	symFreq := make([]int64, 1026)
	rng := rand.New(rand.NewSource(5))
	for i := range symData {
		s := uint16(513 + int(rng.NormFloat64()*3))
		symData[i] = s
		symFreq[s]++
	}
	symEnc, err := huffman.Encode(dev, symData, 1026)
	if err != nil {
		return nil, err
	}

	osField := make([]float32, oneShot[0]*oneShot[1]*oneShot[2])
	for i := range osField {
		osField[i] = float32(i%23) + 0.5*float32(i%7)
	}
	osOpts := core.CuszL()
	osCtx := arena.NewCtx()
	osBlob, err := core.CompressCtx(osCtx, dev1, osField, oneShot, 0.01, osOpts)
	if err != nil {
		return nil, err
	}

	sField, err := datagen.Generate("jhtdb", streamDims, 1)
	if err != nil {
		return nil, err
	}
	sEB := metrics.AbsEB(sField.Data, 1e-2)
	sOpts := core.HiTP()
	sBlobSerial, err := core.Compress(dev, sField.Data, sField.Dims, sEB, sOpts)
	if err != nil {
		return nil, err
	}
	sBlobChunked, err := core.CompressChunked(dev, sField.Data, sField.Dims, sEB, sOpts, 32)
	if err != nil {
		return nil, err
	}

	// A seekable (v4) container of the same field for the random-access
	// benchmark: reading the middle 32 planes through the chunk index vs
	// decoding the whole container sequentially to reach them.
	var v4buf bytes.Buffer
	sw, err := stream.NewWriter(&v4buf, sField.Dims, sEB,
		stream.WithMode(cuszhi.ModeTP), stream.WithChunkPlanes(32), stream.WithWorkers(4))
	if err != nil {
		return nil, err
	}
	if err := sw.WriteValues(sField.Data); err != nil {
		return nil, err
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	v4Blob := v4buf.Bytes()
	planeLo := sField.Dims[0]/2 - 16
	planeHi := planeLo + 32
	winPS := sField.Len() / sField.Dims[0] // elements per plane
	ra, err := stream.OpenReaderAt(bytes.NewReader(v4Blob), int64(len(v4Blob)), stream.WithWorkers(4))
	if err != nil {
		return nil, err
	}

	// A mixed-character field for the auto-mode benchmark: the first half
	// is smooth and separable (interpolation-friendly), the second half is
	// small-scale noise (Lorenzo territory), so per-chunk codec selection
	// has a real decision to make. Auto mode is compared against the best
	// single fixed mode on both ratio and throughput.
	mixDims := streamDims
	mixPS := mixDims[1] * mixDims[2]
	mix := make([]float32, mixDims[0]*mixPS)
	mrng := rand.New(rand.NewSource(7))
	for z := 0; z < mixDims[0]; z++ {
		for i := 0; i < mixPS; i++ {
			if z < mixDims[0]/2 {
				y, x := i/mixDims[2], i%mixDims[2]
				mix[z*mixPS+i] = float32(z)*0.5 + float32(y)*0.25 + float32(x)*0.125
			} else {
				mix[z*mixPS+i] = float32(mrng.NormFloat64() * 10)
			}
		}
	}
	mixEB := metrics.AbsEB(mix, 1e-2)
	bestFixed := core.Options{}
	bestFixedLen := -1
	for _, name := range []string{"hi-cr", "hi-tp", "cusz-l"} {
		opts, err := core.ModeOptions(name)
		if err != nil {
			return nil, err
		}
		blob, err := core.CompressChunked(dev4, mix, mixDims, mixEB, opts, 32)
		if err != nil {
			return nil, err
		}
		if bestFixedLen < 0 || len(blob) < bestFixedLen {
			bestFixedLen = len(blob)
			bestFixed = opts
		}
	}
	autoBlob, err := core.CompressChunkedAuto(dev4, mix, mixDims, mixEB, 32)
	if err != nil {
		return nil, err
	}
	mixBytes := int64(4 * len(mix))
	autoRatio := float64(mixBytes) / float64(len(autoBlob))
	fixedRatio := float64(mixBytes) / float64(bestFixedLen)

	// The non-default selection policies on the same field: throughput may
	// trade a little ratio for a faster codec, ratio-floor takes the fastest
	// codec that still clears the floor.
	thrPol := core.ThroughputPolicy()
	rfPol := core.RatioFloorPolicy(8)
	thrBlob, err := core.CompressChunkedAutoPolicy(dev4, mix, mixDims, mixEB, 32, thrPol)
	if err != nil {
		return nil, err
	}
	rfBlob, err := core.CompressChunkedAutoPolicy(dev4, mix, mixDims, mixEB, 32, rfPol)
	if err != nil {
		return nil, err
	}
	thrRatio := float64(mixBytes) / float64(len(thrBlob))
	rfRatio := float64(mixBytes) / float64(len(rfBlob))

	// Per-backend chunk codecs (format v5, fixed codec per container) on
	// the same streaming field: throughput and ratio for each registered
	// backend next to the assembly numbers above.
	type backendBench struct {
		name string
		blob []byte
		cd   core.Codec
	}
	var backends []backendBench
	for _, name := range []string{"fzgpu", "szp", "szx"} {
		cd, ok := core.CodecByName(name)
		if !ok {
			return nil, fmt.Errorf("backend codec %q not registered", name)
		}
		blob, err := core.CompressChunkedCodec(dev4, sField.Data, sField.Dims, sEB, cd, 32)
		if err != nil {
			return nil, err
		}
		backends = append(backends, backendBench{name: name, blob: blob, cd: cd})
	}

	// Per-kernel microbenchmarks over the batched hot loops, isolated from
	// container framing and entropy stages: the Lorenzo predict/quantize
	// sweep, one full interpolation-level pass set, and the zigzag/bitplane
	// packing pipeline (TCMS1-BIT1-RRE1) on quant-like bytes.
	kDims := []int{96, 96, 96}
	if quick {
		kDims = []int{48, 48, 48}
	}
	kField, err := datagen.Generate("jhtdb", kDims, 3)
	if err != nil {
		return nil, err
	}
	kEB := metrics.AbsEB(kField.Data, 1e-2)
	kCtx := arena.NewCtx()
	lzGrid := lorenzo.NewGrid(kDims)
	ipGrid := interp.NewGrid(kDims)
	ipCfg := interp.HiConfig()
	bpData := quantLike(len(kField.Data), 9)
	bpPipe := lccodec.HiTP()

	benches := []bench{
		{"kernel/lorenzo-predict", int64(4 * len(kField.Data)), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kCtx.Reset()
				if _, err := lorenzo.CompressCtx(kCtx, dev1, kField.Data, lzGrid, kEB); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"kernel/interp-level", int64(4 * len(kField.Data)), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kCtx.Reset()
				if _, err := interp.CompressCtx(kCtx, dev1, kField.Data, ipGrid, ipCfg, kEB); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"kernel/bitplane-pack", int64(len(bpData)), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kCtx.Reset()
				if _, err := bpPipe.EncodeCtx(kCtx, dev1, bpData); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, bb := range backends {
		bb := bb
		ratio := float64(sField.SizeBytes()) / float64(len(bb.blob))
		benches = append(benches,
			bench{"backend/" + bb.name + "/compress-4w", int64(sField.SizeBytes()), ratio, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.CompressChunkedCodec(dev4, sField.Data, sField.Dims, sEB, bb.cd, 32); err != nil {
						b.Fatal(err)
					}
				}
			}},
			bench{"backend/" + bb.name + "/decompress-4w", int64(sField.SizeBytes()), ratio, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.Decompress(dev4, bb.blob); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
	}

	return append(benches, []bench{
		{"stream/automode/compress-auto-estimator-4w", mixBytes, autoRatio, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunkedAuto(dev4, mix, mixDims, mixEB, 32); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/automode/compress-auto-throughput-4w", mixBytes, thrRatio, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunkedAutoPolicy(dev4, mix, mixDims, mixEB, 32, thrPol); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/automode/compress-auto-ratio-floor-4w", mixBytes, rfRatio, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunkedAutoPolicy(dev4, mix, mixDims, mixEB, 32, rfPol); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/automode/compress-best-fixed-4w", mixBytes, fixedRatio, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunked(dev4, mix, mixDims, mixEB, bestFixed, 32); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/automode/decompress-4w", mixBytes, autoRatio, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decompress(dev4, autoBlob); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"huffman/encode-bytes", int64(hfN), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := huffman.EncodeBytes(dev, hfData); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"huffman/decode-bytes", int64(hfN), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := huffman.DecodeBytes(dev, hfEnc); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"huffman/decode-symbols-ctx", int64(2 * hfN), 0, func(b *testing.B) {
			ctx := arena.NewCtx()
			for i := 0; i < b.N; i++ {
				ctx.Reset()
				if _, err := huffman.DecodeCtx(ctx, dev, symEnc); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"huffman/encode-symbols-fused", int64(2 * hfN), 0, func(b *testing.B) {
			ctx := arena.NewCtx()
			for i := 0; i < b.N; i++ {
				ctx.Reset()
				if _, err := huffman.EncodeCtx(ctx, dev, symData, 1026, symFreq); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"core/oneshot-cusz-l-64/compress-ctx", int64(4 * len(osField)), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				osCtx.Reset()
				if _, err := core.CompressCtx(osCtx, dev1, osField, oneShot, 0.01, osOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"core/oneshot-cusz-l-64/decompress-ctx", int64(4 * len(osField)), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				osCtx.Reset()
				if _, _, err := core.DecompressCtx(osCtx, dev1, osBlob); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/compress/serial", int64(sField.SizeBytes()), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compress(dev1, sField.Data, sField.Dims, sEB, sOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/compress/sharded-4w", int64(sField.SizeBytes()), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressChunked(dev4, sField.Data, sField.Dims, sEB, sOpts, 32); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/decompress/serial", int64(sField.SizeBytes()), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decompress(dev1, sBlobSerial); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/decompress/sharded-4w", int64(sField.SizeBytes()), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decompress(dev4, sBlobChunked); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Random access: both sides deliver the same middle-32-plane
		// window, so MB/s compares time-to-window directly.
		{"stream/readplanes/middle32-v4", int64(4 * 32 * winPS), 0, func(b *testing.B) {
			var dst []float32
			for i := 0; i < b.N; i++ {
				var err error
				if dst, err = ra.ReadPlanes(dst, planeLo, planeHi); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/readplanes/middle32-fulldecode", int64(4 * 32 * winPS), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				recon, _, err := core.Decompress(dev4, v4Blob)
				if err != nil {
					b.Fatal(err)
				}
				_ = recon[planeLo*winPS : planeHi*winPS]
			}
		}},
	}...), nil
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file")
	quick := flag.Bool("quick", false, "small field sizes for CI smoke runs")
	baseline := flag.String("baseline", "", "previous BENCH_core.json to compare against")
	flag.Parse()

	var base *Report
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base = &Report{}
		if err := json.Unmarshal(raw, base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	benches, err := suite(*quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Quick:         *quick,
	}
	if base != nil {
		rep.BaselineSource = fmt.Sprintf("%s (generated_unix %d)", *baseline, base.GeneratedUnix)
	}
	for _, bm := range benches {
		bytes := bm.bytes
		run := bm.run
		r := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			run(b)
		})
		res := Result{
			Name:     bm.name,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			MBPerSec: float64(bytes) * float64(r.N) / r.T.Seconds() / 1e6,
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
			N:        r.N,
			Ratio:    bm.ratio,
		}
		if base != nil {
			for _, b := range base.Benchmarks {
				if b.Name == res.Name && b.MBPerSec > 0 {
					res.BaselineMBPerSec = b.MBPerSec
					res.Speedup = res.MBPerSec / b.MBPerSec
				}
			}
		}
		fmt.Printf("%-42s %12.0f ns/op %9.2f MB/s %7d allocs/op", res.Name, res.NsPerOp, res.MBPerSec, res.AllocsOp)
		if res.Ratio > 0 {
			fmt.Printf("  CR %.2f", res.Ratio)
		}
		if res.Speedup > 0 {
			fmt.Printf("  %+.1f%% vs baseline", (res.Speedup-1)*100)
		}
		fmt.Println()
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
