package gpusim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLaunchCoversAllBlocks(t *testing.T) {
	d := New(4)
	seen := make([]atomic.Int32, 1000)
	d.Launch(len(seen), func(b int) { seen[b].Add(1) })
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("block %d executed %d times", i, got)
		}
	}
}

func TestLaunchZeroAndNegative(t *testing.T) {
	d := New(2)
	ran := false
	d.Launch(0, func(int) { ran = true })
	d.Launch(-5, func(int) { ran = true })
	if ran {
		t.Fatal("body ran for empty launch")
	}
}

func TestLaunchSingleWorkerSequential(t *testing.T) {
	d := New(1)
	var order []int
	d.Launch(10, func(b int) { order = append(order, b) })
	for i, b := range order {
		if i != b {
			t.Fatalf("single-worker launch out of order: %v", order)
		}
	}
}

func TestLaunch3D(t *testing.T) {
	d := New(3)
	var count atomic.Int32
	var xs, ys, zs [4]atomic.Int32
	d.Launch3D(2, 3, 4, func(z, y, x int) {
		count.Add(1)
		zs[z].Add(1)
		ys[y].Add(1)
		xs[x].Add(1)
	})
	if count.Load() != 24 {
		t.Fatalf("ran %d blocks, want 24", count.Load())
	}
	for x := 0; x < 4; x++ {
		if xs[x].Load() != 6 {
			t.Fatalf("x=%d ran %d, want 6", x, xs[x].Load())
		}
	}
	for z := 0; z < 2; z++ {
		if zs[z].Load() != 12 {
			t.Fatalf("z=%d ran %d, want 12", z, zs[z].Load())
		}
	}
}

func TestLaunchChunks(t *testing.T) {
	d := New(4)
	n := 1003
	mark := make([]atomic.Int32, n)
	d.LaunchChunks(n, 17, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			mark[i].Add(1)
		}
	})
	for i := range mark {
		if mark[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, mark[i].Load())
		}
	}
}

func TestLaunchChunksAutoChunk(t *testing.T) {
	d := New(8)
	var total atomic.Int64
	d.LaunchChunks(100, 0, func(lo, hi int) { total.Add(int64(hi - lo)) })
	if total.Load() != 100 {
		t.Fatalf("covered %d, want 100", total.Load())
	}
}

func TestReduceOrdered(t *testing.T) {
	d := New(4)
	// Non-commutative combine (string concat) must respect block order.
	got := Reduce(d, 5, func(b int) string { return string(rune('a' + b)) },
		func(a, b string) string { return a + b })
	if got != "abcde" {
		t.Fatalf("Reduce = %q, want abcde", got)
	}
}

func TestReduceSum(t *testing.T) {
	d := New(7)
	got := Reduce(d, 1000, func(b int) int { return b }, func(a, b int) int { return a + b })
	if got != 999*1000/2 {
		t.Fatalf("Reduce sum = %d", got)
	}
}

func TestDefaultDevice(t *testing.T) {
	if Default.Workers() < 1 {
		t.Fatal("default device has no workers")
	}
}

// TestLaunchReusesPoolGoroutines is the persistent-pool regression test: a
// burst of back-to-back launches must be served by reused helper
// goroutines, not one spawn wave per launch (the pre-pool behavior spawned
// workers−1 goroutines on every Launch).
func TestLaunchReusesPoolGoroutines(t *testing.T) {
	d := New(4)
	const launches = 200
	for i := 0; i < launches; i++ {
		var n atomic.Int64
		d.Launch(64, func(int) { n.Add(1) })
		if n.Load() != 64 {
			t.Fatalf("launch %d ran %d of 64 blocks", i, n.Load())
		}
	}
	// Helpers may be respawned a handful of times if the scheduler lets one
	// idle out mid-burst, but anything near one spawn wave per launch means
	// pooling is broken.
	if spawned := d.spawned.Load(); spawned > int64(4*d.workers) {
		t.Fatalf("%d launches spawned %d helper goroutines, want ≈ %d reused helpers",
			launches, spawned, d.workers-1)
	}
	if live := d.live.Load(); live > int64(d.workers-1) {
		t.Fatalf("%d helpers alive, cap is %d", live, d.workers-1)
	}
}

// TestHelpersExpireWhenIdle: an abandoned Device must shed its helper
// goroutines after the idle window rather than pinning them forever.
func TestHelpersExpireWhenIdle(t *testing.T) {
	d := New(4)
	d.Launch(256, func(int) {})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d.live.Load() == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%d helpers still alive after idle window", d.live.Load())
}

// TestConcurrentLaunchesShareDevice: many goroutines launching on one
// Device must all complete correctly (the pool is shared, and each caller
// participates in its own launch).
func TestConcurrentLaunchesShareDevice(t *testing.T) {
	d := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var n atomic.Int64
				d.Launch(37, func(int) { n.Add(1) })
				if n.Load() != 37 {
					t.Errorf("ran %d of 37 blocks", n.Load())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLaunchBatchedAlignment(t *testing.T) {
	d := New(4)
	for _, tc := range []struct{ n, chunk, lanes int }{
		{1000, 37, 8}, {1000, 0, 8}, {5, 64, 8}, {1000, 16, 1}, {1000, 37, 0}, {0, 8, 8},
	} {
		var mu sync.Mutex
		covered := make([]bool, tc.n)
		d.LaunchBatched(tc.n, tc.chunk, tc.lanes, func(lo, hi int) {
			if tc.lanes > 1 && lo%tc.lanes != 0 {
				t.Errorf("n=%d chunk=%d lanes=%d: span start %d unaligned", tc.n, tc.chunk, tc.lanes, lo)
			}
			if tc.lanes > 1 && hi%tc.lanes != 0 && hi != tc.n {
				t.Errorf("n=%d chunk=%d lanes=%d: interior span end %d unaligned", tc.n, tc.chunk, tc.lanes, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("index %d covered twice", i)
				}
				covered[i] = true
			}
			mu.Unlock()
		})
		for i, ok := range covered {
			if !ok {
				t.Fatalf("n=%d chunk=%d lanes=%d: index %d missed", tc.n, tc.chunk, tc.lanes, i)
			}
		}
	}
}
