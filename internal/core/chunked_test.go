package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/bitio"
	"repro/internal/metrics"
)

func chunkedRoundTrip(t *testing.T, data []float32, dims []int, eb float64, opts Options, cp int) []byte {
	t.Helper()
	blob, err := CompressChunked(dev, data, dims, eb, opts, cp)
	if err != nil {
		t.Fatalf("%s cp=%d: CompressChunked: %v", opts.Name, cp, err)
	}
	recon, gotDims, err := Decompress(dev, blob)
	if err != nil {
		t.Fatalf("%s cp=%d: Decompress: %v", opts.Name, cp, err)
	}
	for i := range dims {
		if gotDims[i] != dims[i] {
			t.Fatalf("%s cp=%d: dims %v != %v", opts.Name, cp, gotDims, dims)
		}
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("%s cp=%d: bound violated at %d: %v vs %v (eb=%v)",
			opts.Name, cp, i, data[i], recon[i], eb)
	}
	return blob
}

func rampField(n int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i%23) + 0.5*float32(i%7)
	}
	return data
}

func TestChunkedRoundTripAllModes(t *testing.T) {
	dims := []int{20, 12, 12}
	data := rampField(20 * 12 * 12)
	for _, opts := range allModes() {
		chunkedRoundTrip(t, data, dims, 0.05, opts, 8) // 20 planes: shards of 8,8,4
	}
}

func TestChunkedShardSplits(t *testing.T) {
	dims := []int{17, 10, 10}
	data := rampField(17 * 10 * 10)
	opts := HiTP()
	for _, cp := range []int{1, 3, 16, 17, 100} { // incl. single-chunk and over-thick
		chunkedRoundTrip(t, data, dims, 0.02, opts, cp)
	}
}

func TestChunkedLowDims(t *testing.T) {
	opts := CuszL()
	chunkedRoundTrip(t, rampField(300), []int{300}, 0.02, opts, 64)           // 1-D
	chunkedRoundTrip(t, rampField(40*25), []int{40, 25}, 0.02, opts, 16)      // 2-D
	chunkedRoundTrip(t, rampField(6*5*4*3), []int{6, 5, 4, 3}, 0.02, opts, 2) // 4-D
}

func TestChunkedMatchesOneShotGuarantees(t *testing.T) {
	// The chunked container must reconstruct with the same bound as v1;
	// shard boundaries must not leak error.
	dims := []int{24, 16, 16}
	data := rampField(24 * 16 * 16)
	eb := 0.01
	for _, opts := range []Options{HiCR(), CuszL()} {
		blob := chunkedRoundTrip(t, data, dims, eb, opts, 6)
		recon, _, err := Decompress(dev, blob)
		if err != nil {
			t.Fatal(err)
		}
		if !metrics.WithinBound(data, recon, eb) {
			t.Fatalf("%s: chunked recon out of bound", opts.Name)
		}
	}
}

func TestChunkedInspect(t *testing.T) {
	dims := []int{20, 8, 8}
	data := rampField(20 * 8 * 8)
	blob, err := CompressChunked(dev, data, dims, 0.05, HiTP(), 8)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.NumChunks != 3 || info.ChunkPlanes != 8 ||
		info.EB != 0.05 || info.Dims[0] != 20 {
		t.Fatalf("info = %+v", info)
	}
	v1, err := Compress(dev, data, dims, 0.05, HiTP())
	if err != nil {
		t.Fatal(err)
	}
	info1, err := Inspect(v1)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Version != 1 || info1.NumChunks != 0 || info1.EB != 0.05 {
		t.Fatalf("v1 info = %+v", info1)
	}
}

func TestChunkedRejectsCorruption(t *testing.T) {
	dims := []int{12, 8, 8}
	data := rampField(12 * 8 * 8)
	blob, err := CompressChunked(dev, data, dims, 0.05, HiTP(), 4)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), blob...)
	flip[len(flip)-10] ^= 0xff // payload byte: checksum must catch it
	if _, _, err := Decompress(dev, flip); err == nil {
		t.Fatal("corrupted payload decoded without error")
	}

	for _, cut := range []int{5, 7, 20, len(blob) / 2, len(blob) - 1} {
		if _, _, err := Decompress(dev, blob[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}

	// Trailing garbage is rejected, not silently ignored.
	if _, _, err := Decompress(dev, append(append([]byte(nil), blob...), 1, 2, 3)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}

func TestChunkedRejectsNestedV2(t *testing.T) {
	// A v2 container whose chunk payload is itself v2 must be refused —
	// the format allows only v1 shard payloads, which bounds recursion.
	dims := []int{4, 4, 4}
	data := rampField(64)
	inner, err := CompressChunked(dev, data, dims, 0.05, HiTP(), 4)
	if err != nil {
		t.Fatal(err)
	}
	header, err := AppendChunkedHeader(nil, dims, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	blob := AppendChunkFrame(header, HiTP(), 0, dims, inner)
	if _, _, err := Decompress(dev, blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nested v2 container: err = %v", err)
	}
}

func TestChunkFrameValidation(t *testing.T) {
	h := &ChunkedInfo{Dims: []int{10, 4, 4}, EB: 0.1, ChunkPlanes: 4, NumChunks: 3}
	frame := func(offset int, shardDims []int, payload []byte) []byte {
		return AppendChunkFrame(nil, HiTP(), offset, shardDims, payload)
	}
	cases := map[string][]byte{
		"offset beyond field": frame(10, []int{4, 4, 4}, []byte("x")),
		"overthick shard":     frame(0, []int{5, 4, 4}, []byte("x")),
		"trailing dim drift":  frame(0, []int{4, 4, 5}, []byte("x")),
		"shard past end":      frame(8, []int{4, 4, 4}, []byte("x")),
	}
	for name, raw := range cases {
		if _, _, err := ReadChunkFrame(bytes.NewReader(raw), h); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A frame whose declared checksum mismatches its payload is refused.
	ok := frame(0, []int{4, 4, 4}, []byte{1, 2, 3, 4})
	// Locate the CRC (last 8 bytes = crc[4] + payload[4]) and break it.
	bad := append([]byte(nil), ok...)
	bad[len(bad)-8] ^= 0x01
	if _, _, err := ReadChunkFrame(bytes.NewReader(bad), h); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad crc: err = %v", err)
	}
}

// TestStreamFrameHostilePayloadLen proves a hostile stream header that
// declares a near-cap payload length fails with ErrCorrupt once the data
// runs out, instead of allocating gigabytes up front (payloads are read
// incrementally) — and that both decode paths share the same 1<<31 cap.
func TestStreamFrameHostilePayloadLen(t *testing.T) {
	h := &ChunkedInfo{Dims: []int{1024, 1024, 1024}, EB: 0.1, ChunkPlanes: 1024, NumChunks: 1}
	frame := bitio.AppendUvarint(nil, 0) // offset
	for _, d := range h.Dims {
		frame = bitio.AppendUvarint(frame, uint64(d))
	}
	frame = append(frame, CodecMode(HiTP()))
	frame = bitio.AppendUvarint(frame, 1<<31)  // plen at the format cap
	frame = append(frame, 0, 0, 0, 0)          // crc
	frame = append(frame, make([]byte, 64)...) // far less data than declared
	if _, _, err := ReadChunkFrame(bytes.NewReader(frame), h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile stream frame: err = %v", err)
	}
	// Over the cap: both parsers refuse outright.
	over := bitio.AppendUvarint(nil, 0)
	for _, d := range h.Dims {
		over = bitio.AppendUvarint(over, uint64(d))
	}
	over = append(over, CodecMode(HiTP()))
	over = bitio.AppendUvarint(over, 1<<31+1)
	over = append(over, 0, 0, 0, 0)
	if _, _, err := ReadChunkFrame(bytes.NewReader(over), h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-cap plen via stream: err = %v", err)
	}
	if _, _, _, err := scanChunkFrame(over, 0, h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-cap plen via blob: err = %v", err)
	}
}

// TestChunkCodecModeValidated proves a frame whose codec-mode predictor
// nibble contradicts its payload is rejected (the byte is outside the CRC,
// so the decoder must cross-check it explicitly).
func TestChunkCodecModeValidated(t *testing.T) {
	dims := []int{4, 2, 2}
	opts := HiTP()
	opts.AutoTune = false
	blob, err := CompressChunked(dev, rampField(16), dims, 0.25, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Layout (locked by TestChunkedHeaderGolden): global header is 20
	// bytes, chunk0's codec-mode byte follows its offset + 3 shard dims.
	const modeAt = 20 + 4
	if blob[modeAt] != CodecMode(opts) {
		t.Fatalf("codec byte not at expected offset: %#x", blob[modeAt])
	}
	bad := append([]byte(nil), blob...)
	bad[modeAt] = byte(PredLorenzo)<<4 | bad[modeAt]&0x0f
	if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched codec mode: err = %v", err)
	}
}

// TestChunkedHeaderGolden locks the v2 container layout byte-for-byte so
// format changes are deliberate (bump version2 when they are).
func TestChunkedHeaderGolden(t *testing.T) {
	dims := []int{4, 2, 2}
	data := rampField(16)
	opts := HiTP()
	opts.AutoTune = false // deterministic per-level configs
	blob, err := CompressChunked(dev, data, dims, 0.25, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'c', 'S', 'Z', 'h', // magic
		2, 0, // version, flags
		3, 4, 2, 2, // ndims, dims
	}
	if !bytes.Equal(blob[:len(want)], want) {
		t.Fatalf("header prefix = % x, want % x", blob[:len(want)], want)
	}
	off := len(want)
	if eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[off:])); eb != 0.25 {
		t.Fatalf("eb = %v", eb)
	}
	off += 8
	if blob[off] != 2 || blob[off+1] != 2 { // chunkPlanes, nchunks
		t.Fatalf("chunkPlanes/nchunks = %d %d", blob[off], blob[off+1])
	}
	off += 2
	// First chunk frame: offset 0, shard dims {2,2,2}, codec mode byte
	// (PredInterp<<4 | PipeHiTP = 0x01), payload length varint.
	if blob[off] != 0 || blob[off+1] != 2 || blob[off+2] != 2 || blob[off+3] != 2 {
		t.Fatalf("chunk0 header = % x", blob[off:off+4])
	}
	if mode := blob[off+4]; mode != CodecMode(opts) || mode != 0x01 {
		t.Fatalf("chunk0 codec mode = %#x", mode)
	}
	plen, n := binary.Uvarint(blob[off+5:])
	if n <= 0 {
		t.Fatal("bad payload length varint")
	}
	crcOff := off + 5 + n
	gotCRC := binary.LittleEndian.Uint32(blob[crcOff:])
	payload := blob[crcOff+4 : crcOff+4+int(plen)]
	if crc32.ChecksumIEEE(payload) != gotCRC {
		t.Fatal("chunk0 checksum does not cover payload")
	}
	// The shard payload is a well-formed v1 container.
	if !bytes.Equal(payload[:4], []byte("cSZh")) || payload[4] != 1 {
		t.Fatalf("chunk0 payload prefix = % x", payload[:5])
	}
}

// TestV3HeaderGolden locks the v3 container layout byte-for-byte: the v2
// framing plus the relative-EB flag and the per-shard value-range header
// between the codec-mode byte and the payload length.
func TestV3HeaderGolden(t *testing.T) {
	opts := CuszL()
	header, err := AppendChunkedHeaderV3(nil, []int{4, 2, 2}, 0.25, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'c', 'S', 'Z', 'h', // magic
		3, 1, // version, flags (bit 0 = relative EB)
		3, 4, 2, 2, // ndims, dims
	}
	if !bytes.Equal(header[:len(want)], want) {
		t.Fatalf("header prefix = % x, want % x", header[:len(want)], want)
	}
	off := len(want)
	if eb := math.Float64frombits(binary.LittleEndian.Uint64(header[off:])); eb != 0.25 {
		t.Fatalf("eb = %v", eb)
	}
	off += 8
	if header[off] != 2 || header[off+1] != 2 { // chunkPlanes, nchunks
		t.Fatalf("chunkPlanes/nchunks = %d %d", header[off], header[off+1])
	}
	if off+2 != len(header) {
		t.Fatalf("header length %d, want %d", len(header), off+2)
	}

	// Frame layout: offset, shardDims, codecMode, min/max float32, plen,
	// crc, payload.
	payload := []byte{1, 2, 3}
	frame := AppendChunkFrameV3(nil, opts, 0, []int{2, 2, 2}, -1.5, 2.5, payload)
	if frame[0] != 0 || frame[1] != 2 || frame[2] != 2 || frame[3] != 2 {
		t.Fatalf("frame prefix = % x", frame[:4])
	}
	if frame[4] != CodecMode(opts) {
		t.Fatalf("codec mode = %#x", frame[4])
	}
	if math.Float32frombits(binary.LittleEndian.Uint32(frame[5:])) != -1.5 ||
		math.Float32frombits(binary.LittleEndian.Uint32(frame[9:])) != 2.5 {
		t.Fatal("range header not at bytes 5..12")
	}
	if frame[13] != 3 { // payload length varint
		t.Fatalf("plen byte = %d", frame[13])
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[14:]) {
		t.Fatal("checksum does not cover payload")
	}
	if !bytes.Equal(frame[18:], payload) {
		t.Fatal("payload bytes not at frame tail")
	}
}

// TestV3RejectsBadRange proves the shared frame validator refuses v3
// frames whose range header is unordered or NaN.
func TestV3RejectsBadRange(t *testing.T) {
	h := &ChunkedInfo{Version: 3, Dims: []int{10, 4, 4}, EB: 0.1, ChunkPlanes: 4, NumChunks: 3}
	opts := CuszL()
	bad := AppendChunkFrameV3(nil, opts, 0, []int{4, 4, 4}, 5, -5, []byte{1})
	if _, _, err := ReadChunkFrame(bytes.NewReader(bad), h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unordered range: err = %v", err)
	}
	nan := AppendChunkFrameV3(nil, opts, 0, []int{4, 4, 4}, float32(math.NaN()), 1, []byte{1})
	if _, _, err := ReadChunkFrame(bytes.NewReader(nan), h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN range: err = %v", err)
	}
	if _, _, _, err := scanChunkFrame(bad, 0, h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unordered range via blob scan: err = %v", err)
	}
}

// makeV4 assembles a valid v4 container shard by shard, the way the
// streaming writer does, returning the blob and its index entries.
func makeV4(t testing.TB, data []float32, dims []int, eb float64, cp int) ([]byte, []IndexEntry) {
	t.Helper()
	opts := CuszL()
	blob, err := AppendChunkedHeaderV4(nil, dims, eb, false, cp)
	if err != nil {
		t.Fatal(err)
	}
	ps := planeSize(dims)
	var entries []IndexEntry
	for off := 0; off < dims[0]; off += cp {
		planes := cp
		if off+planes > dims[0] {
			planes = dims[0] - off
		}
		shard := data[off*ps : (off+planes)*ps]
		shardDims := append([]int{planes}, dims[1:]...)
		minV, maxV, _ := ShardRange(shard)
		payload, err := Compress(dev, shard, shardDims, eb, opts)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, IndexEntry{FrameOff: int64(len(blob)), PlaneOff: off, Planes: planes})
		blob = AppendChunkFrameV3(blob, opts, off, shardDims, minV, maxV, payload)
	}
	return AppendChunkIndexFooter(blob, int64(len(blob)), entries), entries
}

// TestV4HeaderGolden locks the v4 container layout byte-for-byte: v3
// framing under version byte 4, finished with the chunk-index footer
// (index body, CRC-32 of the body, 8-byte backpointer, tail magic).
func TestV4HeaderGolden(t *testing.T) {
	dims := []int{4, 2, 2}
	blob, entries := makeV4(t, rampField(16), dims, 0.25, 2)
	want := []byte{
		'c', 'S', 'Z', 'h', // magic
		4, 0, // version, flags (absolute bound)
		3, 4, 2, 2, // ndims, dims
	}
	if !bytes.Equal(blob[:len(want)], want) {
		t.Fatalf("header prefix = % x, want % x", blob[:len(want)], want)
	}
	// Fixed-size tail: backpointer (uint64 LE) + "cSZi".
	tail := blob[len(blob)-IndexTailLen:]
	if !bytes.Equal(tail[8:], []byte("cSZi")) {
		t.Fatalf("tail magic = % x", tail[8:])
	}
	footerOff := binary.LittleEndian.Uint64(tail[:8])
	body := blob[footerOff : len(blob)-IndexTailLen-4]
	gotCRC := binary.LittleEndian.Uint32(blob[len(blob)-IndexTailLen-4:])
	if crc32.ChecksumIEEE(body) != gotCRC {
		t.Fatal("index CRC does not cover the index body")
	}
	// Index body: nchunks, then {frameOff, planeOff, planes} per chunk.
	if body[0] != 2 {
		t.Fatalf("index count byte = %d", body[0])
	}
	off := 1
	for i, e := range entries {
		for field, wantV := range []uint64{uint64(e.FrameOff), uint64(e.PlaneOff), uint64(e.Planes)} {
			v, n := binary.Uvarint(body[off:])
			if n <= 0 || v != wantV {
				t.Fatalf("entry %d field %d = %d, want %d", i, field, v, wantV)
			}
			off += n
		}
	}
	if off != len(body) {
		t.Fatalf("index body has %d trailing bytes", len(body)-off)
	}
	// The container decodes like any other, and the tail parses back.
	recon, gotDims, err := Decompress(dev, blob)
	if err != nil || len(recon) != 16 || gotDims[0] != 4 {
		t.Fatalf("v4 round trip: %v", err)
	}
	parsedOff, err := ParseChunkIndexTail(tail)
	if err != nil || parsedOff != int64(footerOff) {
		t.Fatalf("tail parse: off=%d err=%v", parsedOff, err)
	}
}

func TestV4Inspect(t *testing.T) {
	dims := []int{6, 4, 4}
	blob, _ := makeV4(t, rampField(96), dims, 0.1, 2)
	info, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 4 || !info.HasIndex || info.NumChunks != 3 || info.Dims[0] != 6 {
		t.Fatalf("info = %+v", info)
	}
	// v2 containers report no index.
	v2, err := CompressChunked(dev, rampField(96), dims, 0.1, HiTP(), 2)
	if err != nil {
		t.Fatal(err)
	}
	info2, err := Inspect(v2)
	if err != nil || info2.HasIndex {
		t.Fatalf("v2 info = %+v (err %v)", info2, err)
	}
}

// TestV4HostileFooters drives the sequential decoder through mutilated v4
// footers: every corruption must surface as an error, never a silent
// success or panic.
func TestV4HostileFooters(t *testing.T) {
	dims := []int{8, 4, 4}
	data := rampField(8 * 4 * 4)
	blob, entries := makeV4(t, data, dims, 0.1, 2)
	if _, _, err := Decompress(dev, blob); err != nil {
		t.Fatal(err) // the uncorrupted container must decode
	}
	framesEnd := int(binary.LittleEndian.Uint64(blob[len(blob)-IndexTailLen:]))

	t.Run("truncated footer", func(t *testing.T) {
		for _, cut := range []int{1, 4, IndexTailLen, IndexTailLen + 3, len(blob) - framesEnd - 1} {
			if _, _, err := Decompress(dev, blob[:len(blob)-cut]); err == nil {
				t.Fatalf("footer truncated by %d decoded without error", cut)
			}
		}
	})
	t.Run("index crc mismatch", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[framesEnd+1] ^= 0x40 // a byte inside the index body
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("backpointer past EOF", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint64(bad[len(bad)-IndexTailLen:], uint64(len(bad)))
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("index disagrees with frames", func(t *testing.T) {
		// Rebuild the footer (valid CRC) with a lying frame offset.
		lie := append([]IndexEntry(nil), entries...)
		lie[1].FrameOff++
		bad := AppendChunkIndexFooter(append([]byte(nil), blob[:framesEnd]...), int64(framesEnd), lie)
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("index plane tiling broken", func(t *testing.T) {
		lie := append([]IndexEntry(nil), entries...)
		lie[2].PlaneOff++ // gap in coverage
		bad := AppendChunkIndexFooter(append([]byte(nil), blob[:framesEnd]...), int64(framesEnd), lie)
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("footer missing entirely", func(t *testing.T) {
		if _, _, err := Decompress(dev, blob[:framesEnd]); err == nil {
			t.Fatal("v4 without footer decoded without error")
		}
	})
}

// makeV5 assembles a valid heterogeneous v5 container, cycling the shards
// through the named codecs, returning the blob and its index entries.
func makeV5(t testing.TB, data []float32, dims []int, eb float64, cp int, codecs []string) ([]byte, []IndexEntry) {
	t.Helper()
	blob, err := AppendChunkedHeaderV5(nil, dims, eb, false, cp)
	if err != nil {
		t.Fatal(err)
	}
	ps := planeSize(dims)
	var entries []IndexEntry
	for i, off := 0, 0; off < dims[0]; i, off = i+1, off+cp {
		planes := cp
		if off+planes > dims[0] {
			planes = dims[0] - off
		}
		cd, ok := CodecByName(codecs[i%len(codecs)])
		if !ok {
			t.Fatalf("codec %q not registered", codecs[i%len(codecs)])
		}
		shard := data[off*ps : (off+planes)*ps]
		shardDims := append([]int{planes}, dims[1:]...)
		minV, maxV, _ := ShardRange(shard)
		payload, err := cd.Compress(nil, dev, shard, shardDims, eb)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, IndexEntry{FrameOff: int64(len(blob)), PlaneOff: off, Planes: planes, Codec: cd.ID()})
		blob = AppendChunkFrameV5(blob, cd, off, shardDims, minV, maxV, payload)
	}
	return AppendChunkIndexFooterV5(blob, int64(len(blob)), entries), entries
}

// TestV5HeaderGolden locks the v5 container layout byte-for-byte: v4
// framing under version byte 5 with a codec wire ID in every chunk frame
// (between the codec-mode byte and the value range) and in every
// chunk-index entry. The container under test mixes two codecs — the
// heterogeneous case the format exists for.
func TestV5HeaderGolden(t *testing.T) {
	dims := []int{4, 2, 2}
	blob, entries := makeV5(t, rampField(16), dims, 0.25, 2, []string{"cusz-l", "hi-tp"})
	want := []byte{
		'c', 'S', 'Z', 'h', // magic
		5, 0, // version, flags (absolute bound)
		3, 4, 2, 2, // ndims, dims
	}
	if !bytes.Equal(blob[:len(want)], want) {
		t.Fatalf("header prefix = % x, want % x", blob[:len(want)], want)
	}
	off := len(want)
	if eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[off:])); eb != 0.25 {
		t.Fatalf("eb = %v", eb)
	}
	off += 8
	if blob[off] != 2 || blob[off+1] != 2 { // chunkPlanes, nchunks
		t.Fatalf("chunkPlanes/nchunks = %d %d", blob[off], blob[off+1])
	}
	off += 2
	// Chunk 0 (cusz-l): offset 0, shard dims {2,2,2}, codec mode
	// (PredLorenzo<<4 | PipeHuff = 0x12), codec ID 5, then the range.
	if blob[off] != 0 || blob[off+1] != 2 || blob[off+2] != 2 || blob[off+3] != 2 {
		t.Fatalf("chunk0 header = % x", blob[off:off+4])
	}
	if blob[off+4] != CodecMode(CuszL()) || blob[off+4] != 0x12 {
		t.Fatalf("chunk0 codec mode = %#x", blob[off+4])
	}
	if CodecID(blob[off+5]) != CodecCuszL {
		t.Fatalf("chunk0 codec id = %d", blob[off+5])
	}
	// Chunk 1 (hi-tp) sits at the second index entry's frame offset.
	f1 := entries[1].FrameOff
	if blob[f1] != 2 { // plane offset 2
		t.Fatalf("chunk1 offset byte = %d", blob[f1])
	}
	if blob[f1+4] != CodecMode(HiTP()) || blob[f1+4] != 0x01 {
		t.Fatalf("chunk1 codec mode = %#x", blob[f1+4])
	}
	if CodecID(blob[f1+5]) != CodecHiTP {
		t.Fatalf("chunk1 codec id = %d", blob[f1+5])
	}
	// Footer: index body entries are {frameOff, planeOff, planes, codecID}.
	tail := blob[len(blob)-IndexTailLen:]
	if !bytes.Equal(tail[8:], []byte("cSZi")) {
		t.Fatalf("tail magic = % x", tail[8:])
	}
	footerOff := binary.LittleEndian.Uint64(tail[:8])
	body := blob[footerOff : len(blob)-IndexTailLen-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(blob[len(blob)-IndexTailLen-4:]) {
		t.Fatal("index CRC does not cover the index body")
	}
	if body[0] != 2 {
		t.Fatalf("index count byte = %d", body[0])
	}
	bo := 1
	for i, e := range entries {
		for field, wantV := range []uint64{uint64(e.FrameOff), uint64(e.PlaneOff), uint64(e.Planes), uint64(e.Codec)} {
			v, n := binary.Uvarint(body[bo:])
			if n <= 0 || v != wantV {
				t.Fatalf("entry %d field %d = %d, want %d", i, field, v, wantV)
			}
			bo += n
		}
	}
	if bo != len(body) {
		t.Fatalf("index body has %d trailing bytes", len(body)-bo)
	}
	// And the mixed container decodes.
	recon, gotDims, err := Decompress(dev, blob)
	if err != nil || len(recon) != 16 || gotDims[0] != 4 {
		t.Fatalf("v5 round trip: %v", err)
	}
}

// TestV5MixedCodecRoundTrip is the acceptance case: a v5 container whose
// chunks use two different codecs reconstructs within the bound through
// the sequential decoder, and Inspect reports the per-chunk histogram
// from the footer alone.
func TestV5MixedCodecRoundTrip(t *testing.T) {
	dims := []int{24, 10, 10}
	data := rampField(24 * 10 * 10)
	blob, _ := makeV5(t, data, dims, 0.05, 6, []string{"hi-cr", "cusz-l"})
	recon, gotDims, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims[0] != 24 {
		t.Fatalf("dims = %v", gotDims)
	}
	if i := metrics.FirstViolation(data, recon, 0.05); i >= 0 {
		t.Fatalf("bound violated at %d", i)
	}
	info, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 5 || !info.HasIndex ||
		info.ChunkCodecs["hi-cr"] != 2 || info.ChunkCodecs["cusz-l"] != 2 {
		t.Fatalf("info = %+v", info)
	}
	// CompressChunkedAuto produces the same format end to end.
	auto, err := CompressChunkedAuto(dev, data, dims, 0.05, 6)
	if err != nil {
		t.Fatal(err)
	}
	if auto[4] != 5 {
		t.Fatalf("auto container version = %d", auto[4])
	}
	areon, _, err := Decompress(dev, auto)
	if err != nil {
		t.Fatal(err)
	}
	if i := metrics.FirstViolation(data, areon, 0.05); i >= 0 {
		t.Fatalf("auto bound violated at %d", i)
	}
}

// TestV5HostileCodecIDs drives the decoder through mutilated v5 codec
// metadata: unknown wire IDs, frame/footer disagreements and mode/ID
// mismatches must all surface as ErrCorrupt, never a panic or a silent
// wrong-codec decode.
func TestV5HostileCodecIDs(t *testing.T) {
	dims := []int{8, 4, 4}
	data := rampField(8 * 4 * 4)
	blob, entries := makeV5(t, data, dims, 0.1, 2, []string{"cusz-l", "hi-tp"})
	if _, _, err := Decompress(dev, blob); err != nil {
		t.Fatal(err) // the uncorrupted container must decode
	}
	framesEnd := int(binary.LittleEndian.Uint64(blob[len(blob)-IndexTailLen:]))
	idAt := func(i int) int { return int(entries[i].FrameOff) + 5 } // offset+3 dims+mode

	t.Run("unknown codec id in frame", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[idAt(0)] = 0x7f
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("zero codec id in frame", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[idAt(0)] = 0
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("codec id disagrees with mode byte", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[idAt(0)] = byte(CodecHiTP) // frame 0 carries cusz-l's mode byte
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("footer codec disagrees with frame", func(t *testing.T) {
		lie := append([]IndexEntry(nil), entries...)
		lie[0].Codec = CodecHiTP // registered and self-consistent, but wrong
		bad := AppendChunkIndexFooterV5(append([]byte(nil), blob[:framesEnd]...), int64(framesEnd), lie)
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown codec id in footer", func(t *testing.T) {
		lie := append([]IndexEntry(nil), entries...)
		lie[1].Codec = 0x7f
		bad := AppendChunkIndexFooterV5(append([]byte(nil), blob[:framesEnd]...), int64(framesEnd), lie)
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("v4 footer on a v5 body", func(t *testing.T) {
		// Entries without codec IDs cannot satisfy a v5 parse.
		bad := AppendChunkIndexFooter(append([]byte(nil), blob[:framesEnd]...), int64(framesEnd), entries)
		if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestV2RejectsNonzeroFlags: the v2 flags byte is reserved as zero; a
// nonzero value must be refused rather than silently reinterpreted.
func TestV2RejectsNonzeroFlags(t *testing.T) {
	dims := []int{4, 2, 2}
	blob, err := CompressChunked(dev, rampField(16), dims, 0.25, CuszL(), 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[5] = 1
	if _, _, err := Decompress(dev, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2 with flags=1: err = %v", err)
	}
}
