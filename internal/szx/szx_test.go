package szx

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/datagen"
	"repro/internal/gpusim"
	"repro/internal/metrics"
)

var dev = gpusim.New(4)

func roundTrip(t *testing.T, data []float32, eb float64) []byte {
	t.Helper()
	blob, err := Compress(dev, data, eb)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(data) {
		t.Fatalf("len %d != %d", len(recon), len(data))
	}
	if i := metrics.FirstViolation(data, recon, eb); i >= 0 {
		t.Fatalf("bound violated at %d: %v vs %v", i, data[i], recon[i])
	}
	return blob
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil, 1e-3)
	roundTrip(t, []float32{1}, 1e-3)
	roundTrip(t, []float32{-1, 0, 1, 2}, 1e-3)
	roundTrip(t, make([]float32, 1000), 1e-3)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 50_000)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 100)
	}
	for _, eb := range []float64{1e-1, 1e-3, 1e-6} {
		roundTrip(t, data, eb)
	}
}

func TestConstantBlocksCollapse(t *testing.T) {
	data := make([]float32, 100_000)
	for i := range data {
		data[i] = 42.5
	}
	blob := roundTrip(t, data, 1e-3)
	// One float + header per 128-value block.
	if len(blob) > len(data)/10 {
		t.Fatalf("constant data compressed to %d bytes", len(blob))
	}
}

func TestSmoothDataModestRatio(t *testing.T) {
	f, err := datagen.Generate("miranda", []int{32, 48, 48}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eb := metrics.AbsEB(f.Data, 1e-2)
	blob := roundTrip(t, f.Data, eb)
	cr := metrics.CR(f.SizeBytes(), len(blob))
	// The archetype's signature: fast but limited ratio (paper §2.2).
	if cr < 1.5 {
		t.Fatalf("szx CR = %.2f, want >= 1.5", cr)
	}
	if cr > 100 {
		t.Fatalf("szx CR = %.2f implausibly high", cr)
	}
}

func TestNonFinitePreserved(t *testing.T) {
	data := make([]float32, 300)
	for i := range data {
		data[i] = float32(i)
	}
	data[7] = float32(math.NaN())
	data[200] = float32(math.Inf(-1))
	blob, err := Compress(dev, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Decompress(dev, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(recon[7])) || !math.IsInf(float64(recon[200]), -1) {
		t.Fatal("non-finite values not preserved")
	}
}

func TestMantissaBitsFor(t *testing.T) {
	// eb equal to the value magnitude needs ~no mantissa bits.
	if k := mantissaBitsFor(1.0, 2.0); k != 0 {
		t.Fatalf("huge eb: keep = %d", k)
	}
	// Tight bounds need all bits.
	if k := mantissaBitsFor(1.0, 1e-12); k != 23 {
		t.Fatalf("tiny eb: keep = %d", k)
	}
	// Truncation error must actually respect the bound.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		v := float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3)))
		eb := math.Pow(10, -float64(1+rng.Intn(5)))
		keep := mantissaBitsFor(float32(math.Abs(float64(v))), eb)
		bits := math.Float32bits(v)
		trunc := bits &^ ((1 << (23 - uint(keep))) - 1)
		if keep == 23 {
			trunc = bits
		}
		got := math.Float32frombits(trunc)
		if math.Abs(float64(v)-float64(got)) > eb {
			t.Fatalf("trial %d: v=%v keep=%d err=%v > eb=%v", trial, v, keep, math.Abs(float64(v)-float64(got)), eb)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := make([]float32, 5000)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	blob, err := Compress(dev, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 5, len(blob) / 2, len(blob) - 1} {
		if _, err := Decompress(dev, blob[:cut]); err == nil {
			t.Fatalf("truncation to %d: want error", cut)
		}
	}
	for trial := 0; trial < 30; trial++ {
		bad := append([]byte(nil), blob...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		Decompress(dev, bad) // must not panic
	}
}

func TestCompressErrors(t *testing.T) {
	if _, err := Compress(dev, []float32{1}, 0); err == nil {
		t.Fatal("want eb error")
	}
}

// TestCtxMatchesContextFree: the arena-context entry points must produce
// byte-identical containers to the context-free wrappers (the chunked
// encode scratch must not change the wire format).
func TestCtxMatchesContextFree(t *testing.T) {
	data := make([]float32, 40_000)
	for i := range data {
		data[i] = float32(math.Cos(float64(i)*0.004)) * 100
	}
	// Mix in constant runs so both block kinds are exercised.
	for i := 5000; i < 10000; i++ {
		data[i] = 42.5
	}
	want, err := Compress(dev, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := arena.NewCtx()
	got, err := CompressCtx(ctx, dev, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("context compression diverges from context-free compression")
	}
	ctx.Reset()
	recon, err := DecompressCtx(ctx, dev, got)
	if err != nil {
		t.Fatal(err)
	}
	if i := metrics.FirstViolation(data, recon, 1e-3); i >= 0 {
		t.Fatalf("bound violated at %d", i)
	}
}

// TestAllocsWarmCtx is the arena-refactor guard: warm contexts must run
// the round trip with a near-constant handful of allocations (output
// container, kernel closure), independent of the stream length.
func TestAllocsWarmCtx(t *testing.T) {
	data := make([]float32, 60_000)
	for i := range data {
		data[i] = float32(i%31) * 0.25
	}
	dev1 := gpusim.New(1) // single worker: no per-launch goroutine allocs
	ctx := arena.NewCtx()
	blob, err := CompressCtx(ctx, dev1, data, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if _, err := DecompressCtx(ctx, dev1, blob); err != nil {
		t.Fatal(err)
	}
	comp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := CompressCtx(ctx, dev1, data, 1e-3); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm compress: %v allocs/op", comp)
	if comp > 6 {
		t.Fatalf("steady-state compress allocates %v/op, want <= 6", comp)
	}
	decomp := testing.AllocsPerRun(20, func() {
		ctx.Reset()
		if _, err := DecompressCtx(ctx, dev1, blob); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm decompress: %v allocs/op", decomp)
	if decomp > 4 {
		t.Fatalf("steady-state decompress allocates %v/op, want <= 4", decomp)
	}
}
