// Package lorenzo implements the dual-quantization Lorenzo predictor used
// by the cuSZ-L baseline (Tian et al., PACT'20) and, as its prequantization
// stage, by the FZ-GPU baseline.
//
// Dual quantization first rounds every value to an integer lattice
// qv = round(v / 2ε), then takes the exact integer first-order Lorenzo
// difference of the lattice. Because the difference is computed on already
// quantized integers there is no feedback loop: compression is one parallel
// pass and decompression is a 3-D inclusive prefix sum (one scan per
// dimension), exactly the structure the GPU kernels exploit.
package lorenzo

import (
	"fmt"
	"math"

	"repro/internal/gpusim"
	"repro/internal/quant"
)

// Radius is the symmetric code radius; deltas within it map to codes
// 1..2*Radius, code 0 escapes to the side channel.
const Radius = 512

// Alphabet is the Huffman alphabet size for Lorenzo codes.
const Alphabet = 2*Radius + 2

// latticeCap bounds |qv| so that integer arithmetic cannot overflow during
// the prefix-sum reconstruction; values needing a larger lattice coordinate
// are preserved via the value-outlier list.
const latticeCap = int64(1) << 50

// Grid mirrors interp.Grid for package independence.
type Grid struct {
	Nz, Ny, Nx int
}

// NewGrid normalizes dims (slowest first) to three dimensions.
func NewGrid(dims []int) Grid {
	switch len(dims) {
	case 0:
		return Grid{1, 1, 0}
	case 1:
		return Grid{1, 1, dims[0]}
	case 2:
		return Grid{1, dims[0], dims[1]}
	case 3:
		return Grid{dims[0], dims[1], dims[2]}
	default:
		nz := 1
		for _, d := range dims[:len(dims)-2] {
			nz *= d
		}
		return Grid{nz, dims[len(dims)-2], dims[len(dims)-1]}
	}
}

// Len returns the number of points.
func (g Grid) Len() int { return g.Nz * g.Ny * g.Nx }

// Result is the Lorenzo decomposition output.
type Result struct {
	// Codes holds delta+Radius+1 for in-range deltas, 0 for escapes.
	Codes []uint16
	// Escapes holds the exact deltas of code-0 points, in flat order.
	Escapes []int64
	// ValOutliers holds points whose lattice reconstruction cannot meet the
	// bound (extreme magnitudes); their original values win at decompression.
	ValOutliers *quant.Outliers
}

// Prequantize converts data to its integer lattice (round(v/2ε), clamped),
// reporting each point whose lattice value violates the bound to outlier.
func Prequantize(dev *gpusim.Device, data []float32, twoEB float64) []int64 {
	qv := make([]int64, len(data))
	dev.LaunchChunks(len(data), 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q := math.Round(float64(data[i]) / twoEB)
			switch {
			case q > float64(latticeCap):
				qv[i] = latticeCap
			case q < -float64(latticeCap):
				qv[i] = -latticeCap
			default:
				qv[i] = int64(q)
			}
		}
	})
	return qv
}

// Compress runs the dual-quant Lorenzo decomposition. eb is the absolute
// error bound.
func Compress(dev *gpusim.Device, data []float32, g Grid, eb float64) (*Result, error) {
	if g.Len() != len(data) {
		return nil, fmt.Errorf("lorenzo: grid %dx%dx%d does not match %d values", g.Nz, g.Ny, g.Nx, len(data))
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	qv := Prequantize(dev, data, twoEB)
	res := &Result{
		Codes:       make([]uint16, len(data)),
		ValOutliers: &quant.Outliers{},
	}
	// Pass 1 (parallel): per-point Lorenzo deltas; collect escapes per chunk.
	type escChunk struct {
		deltas  []int64
		valPos  []int
		valVals []float32
	}
	nChunks := (len(data) + (1 << 16) - 1) >> 16
	chunks := make([]escChunk, nChunks)
	dev.Launch(nChunks, func(c int) {
		lo := c << 16
		hi := lo + (1 << 16)
		if hi > len(data) {
			hi = len(data)
		}
		ec := &chunks[c]
		nyx := g.Ny * g.Nx
		for i := lo; i < hi; i++ {
			x := i % g.Nx
			y := (i / g.Nx) % g.Ny
			z := i / nyx
			at := func(dz, dy, dx int) int64 {
				if z-dz < 0 || y-dy < 0 || x-dx < 0 {
					return 0
				}
				return qv[i-dz*nyx-dy*g.Nx-dx]
			}
			pred := at(0, 0, 1) + at(0, 1, 0) + at(1, 0, 0) -
				at(0, 1, 1) - at(1, 0, 1) - at(1, 1, 0) + at(1, 1, 1)
			delta := qv[i] - pred
			if delta >= -Radius && delta < Radius {
				res.Codes[i] = uint16(delta+Radius) + 1
			} else {
				res.Codes[i] = 0
				ec.deltas = append(ec.deltas, delta)
			}
			recon := float32(float64(qv[i]) * twoEB)
			if math.Abs(float64(data[i])-float64(recon)) > eb {
				ec.valPos = append(ec.valPos, i)
				ec.valVals = append(ec.valVals, data[i])
			}
		}
	})
	for _, ec := range chunks {
		res.Escapes = append(res.Escapes, ec.deltas...)
		for k, p := range ec.valPos {
			res.ValOutliers.Append(p, ec.valVals[k])
		}
	}
	return res, nil
}

// Decompress reconstructs the field.
func Decompress(dev *gpusim.Device, res *Result, g Grid, eb float64) ([]float32, error) {
	if len(res.Codes) != g.Len() {
		return nil, fmt.Errorf("lorenzo: %d codes for grid of %d points", len(res.Codes), g.Len())
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound %v must be positive", eb)
	}
	twoEB := 2 * eb
	n := g.Len()
	qv := make([]int64, n)
	// Rebuild deltas (sequential escape consumption, parallel the rest).
	esc := 0
	for i := 0; i < n; i++ {
		c := res.Codes[i]
		if c == 0 {
			if esc >= len(res.Escapes) {
				return nil, fmt.Errorf("lorenzo: escape list exhausted at %d", i)
			}
			qv[i] = res.Escapes[esc]
			esc++
			continue
		}
		if int(c) >= Alphabet {
			return nil, fmt.Errorf("lorenzo: code %d out of range", c)
		}
		qv[i] = int64(c) - 1 - Radius
	}
	if esc != len(res.Escapes) {
		return nil, fmt.Errorf("lorenzo: %d unused escapes", len(res.Escapes)-esc)
	}
	// 3-D inclusive prefix sum: x-scan, y-scan, z-scan.
	nyx := g.Ny * g.Nx
	dev.Launch(g.Nz*g.Ny, func(r int) { // x-scan per row
		base := r * g.Nx
		var acc int64
		for x := 0; x < g.Nx; x++ {
			acc += qv[base+x]
			qv[base+x] = acc
		}
	})
	dev.Launch(g.Nz, func(z int) { // y-scan per plane, vectorized over x
		base := z * nyx
		for y := 1; y < g.Ny; y++ {
			row := base + y*g.Nx
			prev := row - g.Nx
			for x := 0; x < g.Nx; x++ {
				qv[row+x] += qv[prev+x]
			}
		}
	})
	dev.LaunchChunks(nyx, 1<<14, func(lo, hi int) { // z-scan per column chunk
		for z := 1; z < g.Nz; z++ {
			base := z * nyx
			prev := base - nyx
			for i := lo; i < hi; i++ {
				qv[base+i] += qv[prev+i]
			}
		}
	})
	out := make([]float32, n)
	dev.LaunchChunks(n, 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float32(float64(qv[i]) * twoEB)
		}
	})
	for k, p := range res.ValOutliers.Pos {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("lorenzo: outlier position %d out of range", p)
		}
		out[p] = res.ValOutliers.Val[k]
	}
	return out, nil
}
