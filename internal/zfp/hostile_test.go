package zfp

import (
	"errors"
	"testing"

	"repro/internal/bitio"
	"repro/internal/gpusim"
)

// TestDecompressHostileDimsProduct pins the incremental element-count cap:
// each dim individually clears the 2^30 per-dim bound, but three of them
// multiply to 2^90, which wraps the int64 product to 0 — slipping past the
// total-size check and silently decoding an empty field with a nil error.
func TestDecompressHostileDimsProduct(t *testing.T) {
	dev := gpusim.New(2)
	for _, dims := range [][]uint64{
		{1 << 30, 1 << 30, 1 << 30}, // product wraps to 0
		{1 << 30, 1 << 30},          // 2^60: fits int64 but is an alloc bomb
		{1 << 30, 1 << 21},          // 2^51: ditto
	} {
		blob := bitio.AppendUvarint(nil, uint64(len(dims)))
		for _, d := range dims {
			blob = bitio.AppendUvarint(blob, d)
		}
		blob = bitio.AppendUvarint(blob, minBlockBits)
		blob = append(blob, make([]byte, 64)...)
		out, _, err := Decompress(dev, blob)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("dims=%v: got (%d values, %v), want ErrCorrupt", dims, len(out), err)
		}
	}
}
