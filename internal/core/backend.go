// Backend chunk codecs: registry adapters that make the alternate
// compressor packages (fzgpu, szp, szx) first-class format-v5 codecs.
//
// Each adapter implements core.Codec over the package's arena-context API
// and emits a self-contained payload that carries its own dims and error
// bound, so a v5 chunk decodes with no help from the outer container
// header. The adapters expose no Options — they are not predictor/pipeline
// assemblies — so v5 frames carry a zero codec-mode byte for them and
// frame validation rests on the codec ID plus its footer cross-check
// (DecompressShardCtx already skips the v1-payload checks for codecs
// without Options).
//
// Payload layouts:
//
//	fzgpu: the fzgpu container verbatim (it already self-describes dims+eb).
//	szp:   uvarint ndims, dims[ndims], then the szp container (which
//	       carries the flat element count and eb); the dims product must
//	       equal that count.
//	szx:   same dims prefix over the szx container.
//
// Wire IDs are append-only, continuing the assembly numbering.
package core

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/bitio"
	"repro/internal/fzgpu"
	"repro/internal/gpusim"
	"repro/internal/pipeline"
	"repro/internal/szp"
	"repro/internal/szx"
)

// Wire IDs of the backend chunk codecs (append-only, like the assemblies).
const (
	CodecFzGPU CodecID = 6 // FZ-GPU: Lorenzo dual-quant + bit-shuffle/RZE
	CodecSZp   CodecID = 7 // cuSZp2 surrogate: 1-D delta + per-block packing
	CodecSZx   CodecID = 8 // cuSZx/SZx surrogate: constant/truncated blocks
)

// backendCodec adapts one alternate backend package to the Codec
// interface. All three backends take absolute error bounds only, which the
// selection paths guarantee: SelectShardCodec and AutoSelectCtx always
// score under a resolved absolute bound (relative-EB streams derive it
// from the shard's value range before scoring — see stream.Writer).
type backendCodec struct {
	id         CodecID
	name       string
	compress   func(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error)
	decompress func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]float32, []int, error)
}

func (b *backendCodec) Name() string { return b.name }
func (b *backendCodec) ID() CodecID  { return b.id }

func (b *backendCodec) Compress(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error) {
	return b.compress(ctx, dev, data, dims, eb)
}

func (b *backendCodec) Decompress(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]float32, []int, error) {
	recon, rdims, err := b.decompress(ctx, dev, payload)
	if err != nil {
		// Hostile or truncated backend payloads must surface as ErrCorrupt
		// (never a panic); keep the backend's own diagnosis in the chain.
		return nil, nil, fmt.Errorf("core: %s payload: %v: %w", b.name, err, ErrCorrupt)
	}
	return recon, rdims, nil
}

// appendBackendDims writes the dims prefix shared by the szp/szx payloads.
func appendBackendDims(dst []byte, dims []int) []byte {
	dst = bitio.AppendUvarint(dst, uint64(len(dims)))
	for _, d := range dims {
		dst = bitio.AppendUvarint(dst, uint64(d))
	}
	return dst
}

// parseBackendDims reads the dims prefix back, applying the container-wide
// caps so a hostile prefix fails before any allocation sized by it.
func parseBackendDims(ctx *arena.Ctx, payload []byte) (dims []int, total, off int, err error) {
	nd64, n := bitio.Uvarint(payload)
	if n == 0 || nd64 == 0 || nd64 > 8 {
		return nil, 0, 0, ErrCorrupt
	}
	off = n
	dims = ctx.Ints(int(nd64))
	total = 1
	for i := range dims {
		v, n := bitio.Uvarint(payload[off:])
		if n == 0 || v == 0 || v > 1<<31 {
			return nil, 0, 0, ErrCorrupt
		}
		off += n
		dims[i] = int(v)
		total *= int(v)
		if total <= 0 || total > 1<<33 {
			return nil, 0, 0, ErrCorrupt
		}
	}
	return dims, total, off, nil
}

// flatBackend builds the compress/decompress pair for a backend whose own
// container is one-dimensional (szp, szx): the adapter prefixes the dims
// and cross-checks their product against the backend's element count.
func flatBackend(
	compress func(ctx *arena.Ctx, dev *gpusim.Device, data []float32, eb float64) ([]byte, error),
	decompress func(ctx *arena.Ctx, dev *gpusim.Device, blob []byte) ([]float32, error),
) (
	func(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error),
	func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]float32, []int, error),
) {
	comp := func(ctx *arena.Ctx, dev *gpusim.Device, data []float32, dims []int, eb float64) ([]byte, error) {
		total := 1
		for _, d := range dims {
			if d <= 0 {
				return nil, fmt.Errorf("core: invalid dims %v", dims)
			}
			total *= d
		}
		if len(dims) == 0 || total != len(data) {
			return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
		}
		blob, err := compress(ctx, dev, data, eb)
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, len(blob)+16)
		out = appendBackendDims(out, dims)
		return append(out, blob...), nil
	}
	decomp := func(ctx *arena.Ctx, dev *gpusim.Device, payload []byte) ([]float32, []int, error) {
		dims, total, off, err := parseBackendDims(ctx, payload)
		if err != nil {
			return nil, nil, err
		}
		recon, err := decompress(ctx, dev, payload[off:])
		if err != nil {
			return nil, nil, err
		}
		if len(recon) != total {
			return nil, nil, ErrCorrupt
		}
		return recon, dims, nil
	}
	return comp, decomp
}

func init() {
	szpC, szpD := flatBackend(szp.CompressCtx, szp.DecompressCtx)
	szxC, szxD := flatBackend(szx.CompressCtx, szx.DecompressCtx)
	RegisterCodec(&backendCodec{id: CodecFzGPU, name: "fzgpu",
		compress:   fzgpu.CompressCtx,
		decompress: fzgpu.DecompressCtx,
	})
	RegisterCodec(&backendCodec{id: CodecSZp, name: "szp", compress: szpC, decompress: szpD})
	RegisterCodec(&backendCodec{id: CodecSZx, name: "szx", compress: szxC, decompress: szxD})
}

// CompressChunkedCodec encodes data into a format-v5 container in which
// every chunk is compressed by the one registered codec cd — the
// fixed-backend counterpart of CompressChunkedAuto, used by the cuszhi
// facade and the CLI for -mode fzgpu|szp|szx (backend-coded chunks only
// exist in v5 frames, so even a single-chunk "one-shot" backend container
// takes this path). Shards compress concurrently through per-worker codec
// contexts; eb is absolute.
func CompressChunkedCodec(dev *gpusim.Device, data []float32, dims []int, eb float64, cd Codec, chunkPlanes int) ([]byte, error) {
	total := 1
	for _, d := range dims {
		total *= d
	}
	if len(dims) == 0 || total != len(data) {
		return nil, fmt.Errorf("core: dims %v do not match %d values", dims, len(data))
	}
	out, err := AppendChunkedHeaderV5(nil, dims, eb, false, chunkPlanes)
	if err != nil {
		return nil, err
	}
	n := numChunks(dims, chunkPlanes)
	ps := planeSize(dims)
	ctxs := workerCtxs(dev.Workers(), n)
	defer releaseCtxs(ctxs)
	type cframe struct {
		data   []byte
		offset int
		planes int
	}
	frames, err := pipeline.MapWorker(dev.Workers(), n, func(w, i int) (cframe, error) {
		ctx := ctxs[w]
		ctx.Reset()
		offset := i * chunkPlanes
		planes := chunkPlanes
		if offset+planes > dims[0] {
			planes = dims[0] - offset
		}
		shard := data[offset*ps : (offset+planes)*ps]
		shardDims := append([]int{planes}, dims[1:]...)
		minV, maxV, _ := ShardRange(shard)
		payload, err := cd.Compress(ctx, dev, shard, shardDims, eb)
		if err != nil {
			return cframe{}, fmt.Errorf("core: shard at plane %d: %w", offset, err)
		}
		frame := AppendChunkFrameV5(nil, cd, offset, shardDims, minV, maxV, payload)
		return cframe{data: frame, offset: offset, planes: planes}, nil
	})
	if err != nil {
		return nil, err
	}
	entries := make([]IndexEntry, len(frames))
	for i, f := range frames {
		entries[i] = IndexEntry{FrameOff: int64(len(out)), PlaneOff: f.offset, Planes: f.planes, Codec: cd.ID()}
		out = append(out, f.data...)
	}
	return AppendChunkIndexFooterV5(out, int64(len(out)), entries), nil
}
